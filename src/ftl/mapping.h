/**
 * @file
 * Page-level logical-to-physical mapping table.
 *
 * Alongside each mapping the table stores the *write version* of the
 * data it points to, so that late-completing programs (flush or GC
 * relocation racing with fresh host writes to the same page) can
 * detect that they are stale and must not clobber a newer mapping.
 */

#ifndef CUBESSD_FTL_MAPPING_H
#define CUBESSD_FTL_MAPPING_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/types.h"

namespace cubessd::ftl {

class MappingTable
{
  public:
    explicit MappingTable(std::uint64_t logicalPages);

    std::uint64_t logicalPages() const { return l2p_.size(); }

    /**
     * @return the mapped PPA, or std::nullopt if the LBA was never
     *         written (the "maybe absent" idiom of cubessd.h — no
     *         sentinel values cross the API).
     */
    std::optional<Ppa> lookup(Lba lba) const;

    /** Version of the data currently mapped (0 if never written). */
    std::uint64_t mappedVersion(Lba lba) const;

    /**
     * Point `lba` at `ppa` with `version`.
     * @return the previously mapped PPA (std::nullopt if none), which
     *         the caller must invalidate.
     */
    std::optional<Ppa> map(Lba lba, Ppa ppa, std::uint64_t version);

    /** Number of currently mapped logical pages. */
    std::uint64_t mappedCount() const { return mapped_; }

  private:
    std::vector<Ppa> l2p_;
    std::vector<std::uint64_t> version_;
    std::uint64_t mapped_ = 0;
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_MAPPING_H
