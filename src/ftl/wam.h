/**
 * @file
 * WL Allocation Manager (WAM, paper Sec. 5.2 / Fig. 16).
 *
 * The WAM steers each flush to a leader or follower WL based on the
 * write-buffer utilization mu: above mu_TH (high write-bandwidth
 * demand) it spends fast follower WLs; below, it programs slow leader
 * WLs, replenishing the follower pool for the next burst.
 *
 * An active block is managed in fully mixed (MOS) fashion with two
 * write points: i_Leader — the next h-layer with an unprogrammed
 * leader — and i_Follower — the h-layer whose followers are being
 * consumed. Followers are available while i_Follower < i_Leader.
 */

#ifndef CUBESSD_FTL_WAM_H
#define CUBESSD_FTL_WAM_H

#include <cstdint>
#include <optional>

#include "src/nand/geometry.h"

namespace cubessd::ftl {

/** MOS write-point state of one active block. */
struct MixedWritePoint
{
    std::uint32_t block = 0;
    std::uint32_t iLeader = 0;    ///< next h-layer with a free leader
    std::uint32_t iFollower = 0;  ///< h-layer whose followers are in use
    std::uint32_t followerUsed = 0;  ///< followers consumed on iFollower

    bool
    full(const nand::NandGeometry &geom) const
    {
        return iLeader >= geom.layersPerBlock &&
               iFollower >= geom.layersPerBlock;
    }

    bool
    hasFollower(const nand::NandGeometry &geom) const
    {
        return iFollower < iLeader && iFollower < geom.layersPerBlock &&
               followerUsed < geom.wlsPerLayer - 1;
    }

    bool
    hasLeader(const nand::NandGeometry &geom) const
    {
        return iLeader < geom.layersPerBlock;
    }
};

/** One allocation decision. */
struct WlChoice
{
    nand::WlAddr wl{};
    bool isLeader = false;
};

class Wam
{
  public:
    explicit Wam(double muThreshold) : muThreshold_(muThreshold) {}

    double muThreshold() const { return muThreshold_; }

    /**
     * Pick the next WL of `wp` given buffer utilization `mu`.
     * @return nullopt if the block is full.
     */
    std::optional<WlChoice>
    choose(MixedWritePoint &wp, const nand::NandGeometry &geom,
           double mu) const;

    /** Take the next follower WL regardless of mu (if any). */
    std::optional<WlChoice>
    takeFollower(MixedWritePoint &wp,
                 const nand::NandGeometry &geom) const;

    /** Take the next leader WL regardless of mu (if any). */
    std::optional<WlChoice>
    takeLeader(MixedWritePoint &wp, const nand::NandGeometry &geom) const;

  private:
    double muThreshold_;
};

}  // namespace cubessd::ftl

#endif  // CUBESSD_FTL_WAM_H
